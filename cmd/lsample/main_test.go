package main

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/spec"
	"repro/internal/state"
)

func TestRunModels(t *testing.T) {
	cases := [][]string{
		{"-model", "hardcore", "-graph", "cycle", "-n", "12", "-lambda", "1", "-sampler", "jvv"},
		{"-model", "hardcore", "-graph", "path", "-n", "10", "-sampler", "seq"},
		{"-model", "ising", "-graph", "cycle", "-n", "10", "-beta", "0.8", "-sampler", "seq"},
		{"-model", "coloring", "-graph", "cycle", "-n", "10", "-q", "5", "-sampler", "jvv"},
		{"-model", "matching", "-graph", "cycle", "-n", "8", "-lambda", "1.5", "-sampler", "jvv"},
		{"-model", "hardcore", "-graph", "tree", "-n", "15", "-lambda", "0.5", "-sampler", "seq"},
		{"-model", "hardcore", "-graph", "grid", "-n", "3", "-lambda", "0.4", "-sampler", "seq"},
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, args := range cases {
		if err := run(args, devnull); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	bad := [][]string{
		{"-model", "nosuch"},
		{"-graph", "nosuch"},
		{"-sampler", "nosuch", "-n", "6"},
		// Non-uniqueness hardcore must be refused (the lower-bound regime).
		{"-model", "hardcore", "-graph", "grid", "-n", "4", "-lambda", "50"},
		// Ising outside the uniqueness window.
		{"-model", "ising", "-graph", "grid", "-n", "4", "-beta", "0.1"},
	}
	for _, args := range bad {
		if err := run(args, devnull); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestSpecFlagEquivalence is the contract of the redesigned construction
// path: the legacy -model/-graph/-n flags synthesize a spec document, and
// running that document through -spec must reproduce the legacy run's
// output stream byte for byte (same instance, same seed, same dynamics).
func TestSpecFlagEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		legacy []string // instance-describing flags
		rest   []string // sampler/seed flags shared by both runs
	}{
		{"hardcore-glauber", []string{"-model", "hardcore", "-graph", "cycle", "-n", "12", "-lambda", "1.3"},
			[]string{"-algo", "glauber", "-sweeps", "8", "-seed", "7"}},
		{"ising-metropolis", []string{"-model", "ising", "-graph", "torus", "-n", "4", "-beta", "0.7"},
			[]string{"-algo", "metropolis", "-rounds", "20", "-seed", "3"}},
		{"coloring-chromatic-batch", []string{"-model", "coloring", "-graph", "grid", "-n", "3", "-q", "6"},
			[]string{"-algo", "chromatic", "-chains", "4", "-sweeps", "6", "-seed", "11"}},
		{"matching-jvv", []string{"-model", "matching", "-graph", "path", "-n", "8", "-lambda", "1.5"},
			[]string{"-sampler", "jvv", "-seed", "5"}},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Synthesize the document exactly as the legacy path does and
			// write it out.
			fs := flag.NewFlagSet("capture", flag.ContinueOnError)
			var o options
			fs.StringVar(&o.model, "model", "hardcore", "")
			fs.StringVar(&o.graph, "graph", "cycle", "")
			fs.IntVar(&o.n, "n", 24, "")
			fs.Float64Var(&o.lambda, "lambda", 1.0, "")
			fs.IntVar(&o.q, "q", 5, "")
			fs.Float64Var(&o.beta, "beta", 0.6, "")
			if err := fs.Parse(tc.legacy); err != nil {
				t.Fatal(err)
			}
			f, err := legacySpec(o)
			if err != nil {
				t.Fatal(err)
			}
			data, err := f.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			specPath := filepath.Join(dir, tc.name+".json")
			if err := os.WriteFile(specPath, data, 0o644); err != nil {
				t.Fatal(err)
			}

			capture := func(args []string) string {
				out, err := os.CreateTemp(dir, "out")
				if err != nil {
					t.Fatal(err)
				}
				defer out.Close()
				if err := run(args, out); err != nil {
					t.Fatalf("run(%v) = %v", args, err)
				}
				got, err := os.ReadFile(out.Name())
				if err != nil {
					t.Fatal(err)
				}
				return string(got)
			}
			legacy := capture(append(append([]string{}, tc.legacy...), tc.rest...))
			viaSpec := capture(append([]string{"-spec", specPath}, tc.rest...))
			if legacy != viaSpec {
				t.Errorf("legacy flags and -spec diverge:\nlegacy:\n%s\nspec:\n%s", legacy, viaSpec)
			}
		})
	}
}

// TestSpecFlagConflicts pins the -spec flag's guardrails: instance flags
// alongside -spec are an error, as are unreadable and invalid documents.
func TestSpecFlagConflicts(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	f := &spec.File{
		Version: spec.Version,
		Graph:   spec.Graph{Kind: "cycle", N: 10},
		Model:   &spec.Model{Kind: "hardcore", Lambda: 1},
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", good, "-algo", "glauber", "-sweeps", "2"}, devnull); err != nil {
		t.Errorf("valid -spec run failed: %v", err)
	}
	if err := run([]string{"-spec", good, "-model", "ising"}, devnull); err == nil {
		t.Error("-spec with -model accepted")
	}
	if err := run([]string{"-spec", filepath.Join(dir, "missing.json")}, devnull); err == nil {
		t.Error("missing spec file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var se *spec.Error
	if err := run([]string{"-spec", bad}, devnull); !errors.As(err, &se) {
		t.Errorf("invalid spec returned %v, want *spec.Error", err)
	}
	if err := run([]string{"-chains", "0", "-algo", "chromatic", "-n", "8"}, devnull); err == nil {
		t.Error("-chains 0 accepted")
	}
}

func TestRunAlgos(t *testing.T) {
	cases := [][]string{
		{"-model", "hardcore", "-graph", "cycle", "-n", "16", "-lambda", "1.2", "-algo", "luby"},
		{"-model", "hardcore", "-graph", "torus", "-n", "4", "-lambda", "0.8", "-algo", "metropolis", "-rounds", "50"},
		{"-model", "coloring", "-graph", "grid", "-n", "3", "-q", "6", "-algo", "luby", "-rounds", "40"},
		{"-model", "ising", "-graph", "cycle", "-n", "12", "-beta", "0.7", "-algo", "metropolis"},
		{"-model", "matching", "-graph", "path", "-n", "8", "-lambda", "1.5", "-algo", "luby"},
		{"-model", "hardcore", "-graph", "path", "-n", "10", "-algo", "glauber", "-sweeps", "10"},
		// -algo does not require the uniqueness regime: λ above λc is fine.
		{"-model", "hardcore", "-graph", "grid", "-n", "3", "-lambda", "50", "-algo", "luby"},
		// The registry dynamics and the batched multi-chain engines.
		{"-model", "hardcore", "-graph", "cycle", "-n", "12", "-algo", "chromatic", "-sweeps", "20"},
		{"-model", "ising", "-graph", "torus", "-n", "4", "-beta", "0.7", "-algo", "chromatic", "-chains", "8", "-sweeps", "10"},
		{"-model", "coloring", "-graph", "grid", "-n", "3", "-q", "6", "-algo", "chromatic", "-chains", "3", "-rounds", "15"},
		{"-model", "hardcore", "-graph", "cycle", "-n", "12", "-algo", "luby", "-chains", "4", "-rounds", "30"},
		{"-model", "ising", "-graph", "torus", "-n", "4", "-beta", "0.7", "-algo", "metropolis", "-chains", "8", "-rounds", "20"},
		{"-model", "matching", "-graph", "path", "-n", "8", "-lambda", "1.5", "-algo", "luby", "-chains", "6", "-rounds", "25"},
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	for _, args := range cases {
		if err := run(args, devnull); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
	if err := run([]string{"-algo", "nosuch", "-n", "6"}, devnull); err == nil {
		t.Error("bogus -algo accepted")
	}
	// The sequential baseline has no batched multi-chain form.
	if err := run([]string{"-algo", "glauber", "-chains", "4", "-n", "6"}, devnull); err == nil {
		t.Error("-chains with -algo glauber accepted")
	}
	// ... and -chains without -algo must be rejected, not silently ignored.
	if err := run([]string{"-sampler", "jvv", "-chains", "4", "-n", "6"}, devnull); err == nil {
		t.Error("-chains with -sampler accepted")
	}
}

// TestRunRhat exercises the Gelman–Rubin path of the batched engine and
// its preconditions.
func TestRunRhat(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	ok := [][]string{
		{"-model", "ising", "-graph", "cycle", "-n", "10", "-beta", "0.7", "-algo", "chromatic", "-chains", "4", "-sweeps", "8", "-rhat"},
		{"-model", "hardcore", "-graph", "grid", "-n", "3", "-algo", "chromatic", "-chains", "2", "-rounds", "5", "-rhat"},
		// R̂ generalizes to the batched LubyGlauber and LocalMetropolis engines.
		{"-model", "hardcore", "-graph", "cycle", "-n", "10", "-algo", "luby", "-chains", "4", "-rounds", "8", "-rhat"},
		{"-model", "ising", "-graph", "cycle", "-n", "10", "-beta", "0.7", "-algo", "metropolis", "-chains", "4", "-rounds", "8", "-rhat"},
	}
	for _, args := range ok {
		if err := run(args, devnull); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
	bad := [][]string{
		// R̂ needs ≥ 2 chains.
		{"-model", "ising", "-graph", "cycle", "-n", "10", "-beta", "0.7", "-algo", "chromatic", "-rhat"},
		{"-model", "hardcore", "-graph", "cycle", "-n", "10", "-algo", "luby", "-rhat"},
		// ... and a batched dynamic, not the exact/approximate samplers or
		// the sequential baseline.
		{"-model", "hardcore", "-graph", "cycle", "-n", "10", "-algo", "glauber", "-chains", "4", "-rhat"},
		{"-model", "hardcore", "-graph", "cycle", "-n", "10", "-sampler", "jvv", "-rhat"},
	}
	for _, args := range bad {
		if err := run(args, devnull); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestRunConvergeStopsEarly is the acceptance criterion of the adaptive
// driver wiring: on a fast-mixing corpus instance, -converge 'rhat<1.05'
// must stop in fewer sweep-equivalents than the fixed default budget of
// 64, and say so in the report line.
func TestRunConvergeStopsEarly(t *testing.T) {
	dir := t.TempDir()
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	args := []string{"-spec", "../../testdata/corpus/hardcore-tree15-below.json",
		"-algo", "chromatic", "-converge", "rhat<1.05", "-seed", "5"}
	if err := run(args, out); err != nil {
		t.Fatalf("run(%v) = %v", args, err)
	}
	got, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	text := string(got)
	if !strings.Contains(text, "stop=converged") {
		t.Fatalf("run did not converge:\n%s", text)
	}
	m := regexp.MustCompile(`sweeps=(\d+) stop=`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no sweep count in report:\n%s", text)
	}
	sweeps, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	if sweeps >= 64 {
		t.Errorf("adaptive stop used %d sweeps, want fewer than the fixed default 64:\n%s", sweeps, text)
	}
}

// TestRunAdaptiveFlags covers the driver path's flag surface: escalation
// lists, -min-ess, -burnin, and the rejections.
func TestRunAdaptiveFlags(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	ok := [][]string{
		// Escalation list with a rate floor and both targets.
		{"-model", "hardcore", "-graph", "cycle", "-n", "12", "-lambda", "2",
			"-algo", "metropolis,chromatic", "-min-rate", "0.99", "-converge", "rhat<1.2", "-sweeps", "200"},
		// -min-ess alone triggers the driver; -chains defaults up.
		{"-model", "ising", "-graph", "cycle", "-n", "10", "-beta", "0.7",
			"-algo", "chromatic", "-min-ess", "50", "-sweeps", "200"},
		// Burn-in plus an explicit chain count.
		{"-model", "hardcore", "-graph", "grid", "-n", "3",
			"-algo", "luby", "-chains", "4", "-burnin", "8", "-converge", "rhat<1.3", "-sweeps", "300"},
	}
	for _, args := range ok {
		if err := run(args, devnull); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
	bad := [][]string{
		// Escalation lists need the adaptive driver.
		{"-model", "hardcore", "-n", "10", "-algo", "chromatic,metropolis"},
		// Unknown stage inside the list.
		{"-model", "hardcore", "-n", "10", "-algo", "chromatic,nosuch", "-converge", "rhat<1.1"},
		// Unparseable criterion.
		{"-model", "hardcore", "-n", "10", "-algo", "chromatic", "-converge", "ess>100"},
		// Explicit -chains 1 stays a cross-chain error even with -converge.
		{"-model", "hardcore", "-n", "10", "-algo", "chromatic", "-chains", "1", "-converge", "rhat<1.1"},
		// The -sampler path has no driver.
		{"-model", "hardcore", "-n", "10", "-sampler", "jvv", "-converge", "rhat<1.1"},
		{"-model", "hardcore", "-n", "10", "-sampler", "jvv", "-min-ess", "10"},
	}
	for _, args := range bad {
		if err := run(args, devnull); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestRunProfiles checks the pprof wiring: both profile files must exist
// and be non-empty after a run, and an uncreatable profile path must fail
// the run instead of sampling unprofiled.
func TestRunProfiles(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	args := []string{"-model", "hardcore", "-graph", "cycle", "-n", "16", "-algo", "chromatic",
		"-chains", "4", "-sweeps", "5", "-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, devnull); err != nil {
		t.Fatalf("run(%v) = %v", args, err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s not written: %v", path, err)
		} else if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	if err := run([]string{"-n", "6", "-cpuprofile", dir + "/no/such/dir.pprof"}, devnull); err == nil {
		t.Error("uncreatable -cpuprofile path accepted")
	}
}

// TestRunSurfacesDomainError checks that an unrepresentable lattice shape
// comes back as the state container's typed error, the contract main()
// relies on for its friendlier rendering.
func TestRunSurfacesDomainError(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	var de *state.DomainError
	err = run([]string{"-model", "hardcore", "-graph", "cycle", "-n", "8", "-algo", "chromatic", "-chains", "-3"}, devnull)
	if !errors.As(err, &de) {
		t.Errorf("negative -chains returned %v, want *state.DomainError", err)
	}
}

// TestRunCondFlag pins the -cond ablation flag: every mode produces the
// same sample stream (the cache is an equivalence-preserving speedup), -v
// prefixes the run with the cache coverage line, and unknown modes are
// refused with the fix-up message.
func TestRunCondFlag(t *testing.T) {
	dir := t.TempDir()
	capture := func(args ...string) string {
		t.Helper()
		out, err := os.CreateTemp(dir, "out")
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		if err := run(args, out); err != nil {
			t.Fatalf("run(%v) = %v", args, err)
		}
		got, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(got)
	}
	base := []string{"-model", "hardcore", "-graph", "torus", "-n", "4", "-algo", "chromatic", "-chains", "6", "-sweeps", "8", "-seed", "9"}
	auto := capture(base...)
	for _, mode := range []string{"on", "off"} {
		if got := capture(append(append([]string{}, base...), "-cond", mode)...); got != auto {
			t.Errorf("-cond %s changed the sample stream:\nauto:\n%s\n%s:\n%s", mode, auto, mode, got)
		}
	}
	verbose := capture(append(append([]string{}, base...), "-v")...)
	if !strings.HasPrefix(verbose, "cond-cache: mode=auto cached=16/16 vertices bytes=") {
		t.Errorf("-v coverage line missing or wrong:\n%s", verbose)
	}
	offVerbose := capture(append(append([]string{}, base...), "-cond", "off", "-v")...)
	if !strings.Contains(offVerbose, "cond-cache: mode=off") {
		t.Errorf("-cond off -v line missing:\n%s", offVerbose)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	err = run([]string{"-n", "6", "-cond", "sometimes"}, devnull)
	if err == nil || !strings.Contains(err.Error(), "auto | on | off") {
		t.Errorf("bad -cond mode returned %v, want the fix-up message", err)
	}
}
