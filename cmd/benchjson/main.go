// Command benchjson converts a `go test -json -bench` event stream (test2json
// format, read from stdin) into a compact machine-readable benchmark report
// on stdout, for the CI perf-tracking artifact (BENCH_pr.json):
//
//	go test -json -run=NONE -bench=. -benchtime=1x -benchmem ./... \
//	    | benchjson > BENCH_pr.json
//
// Every benchmark result line becomes one record carrying all reported
// metrics (ns/op, B/op, allocs/op, and any b.ReportMetric custom units).
// Benchmark output lines are echoed to stderr so the CI log keeps the
// human-readable smoke run, and the tool exits nonzero if any package
// failed — the conversion never masks a broken benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json stream the tool consumes.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// Result is one benchmark measurement.
type Result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the artifact schema.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches the start of a benchmark result line; the tail is
// parsed as alternating value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// gomaxprocsSuffix strips the "-8" style procs suffix testing appends to
// benchmark names, so the artifact is comparable across runner shapes.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	report, failed, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: one or more packages failed")
		os.Exit(1)
	}
}

// parse consumes the event stream, echoing benchmark-relevant output lines
// to echo, and reports whether any package failed.
func parse(r io.Reader, echo io.Writer) (*Report, bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	report := &Report{Benchmarks: []Result{}}
	failed := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate stray non-JSON lines (e.g. toolchain notes).
			continue
		}
		switch ev.Action {
		case "fail":
			failed = true
		case "output":
			out := strings.TrimRight(ev.Output, "\n")
			res, ok := parseBenchLine(ev.Package, strings.TrimSpace(out))
			if !ok {
				continue
			}
			fmt.Fprintf(echo, "%s\t%s\n", ev.Package, out)
			report.Benchmarks = append(report.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, failed, err
	}
	sort.Slice(report.Benchmarks, func(i, j int) bool {
		a, b := report.Benchmarks[i], report.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	return report, failed, nil
}

// parseBenchLine decodes one "BenchmarkX-8  20  123 ns/op  4 B/op ..."
// result line.
func parseBenchLine(pkg, line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Result{}, false
	}
	fields := strings.Fields(m[3])
	if len(fields) == 0 || len(fields)%2 != 0 {
		return Result{}, false
	}
	metrics := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		metrics[fields[i+1]] = v
	}
	return Result{
		Package:    pkg,
		Name:       gomaxprocsSuffix.ReplaceAllString(m[1], ""),
		Iterations: iters,
		Metrics:    metrics,
	}, true
}
