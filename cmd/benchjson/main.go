// Command benchjson converts a `go test -json -bench` event stream (test2json
// format, read from stdin) into a compact machine-readable benchmark report
// on stdout, for the CI perf-tracking artifact (BENCH_pr.json):
//
//	go test -json -run=NONE -bench=. -benchtime=100ms -benchmem ./... \
//	    | benchjson -baseline BENCH_main.json > BENCH_pr.json
//
// Every benchmark result line becomes one record carrying all reported
// metrics (ns/op, B/op, allocs/op, and any b.ReportMetric custom units).
// Benchmark output lines are echoed to stderr so the CI log keeps the
// human-readable smoke run, and the tool exits nonzero if any package
// failed — the conversion never masks a broken benchmark.
//
// With -baseline, the run is also compared against a committed report
// (BENCH_main.json at the repo root, regenerated each time a PR lands):
// a per-benchmark ns/op delta table goes to stderr, along with benchmarks
// that appear only in one of the two reports. The deltas are informational
// — a short smoke run is noisy — but they make the perf trajectory
// visible on every PR instead of only inside downloaded artifacts.
//
// With -warn P (requires -baseline), benchmarks whose ns/op regressed by
// more than P percent are flagged with a REGRESSION marker and a summary
// WARNING line. The flag never changes the exit code.
//
// With -fail P (requires -baseline), the same comparison becomes a gate
// for the benchmarks named by -faillist: a comma-separated list of name
// substrings selecting the low-variance benchmarks (by default the
// GlauberStep, CondWeights, BatchSweep, BatchLuby and BatchMetropolis
// kernels, whose straight-line inner loops are stable once the smoke run
// amortizes a few hundred iterations). An allowlisted benchmark
// regressing by more than P percent is marked FAIL and the tool exits
// nonzero after the full report and delta table are written. Benchmarks
// outside the allowlist keep the warn-only treatment.
//
// With -failallocs P (requires -baseline), the allowlisted benchmarks are
// additionally gated on allocs/op: a regression above P percent — or any
// growth at all from a zero-alloc baseline — is marked FAIL and fails the
// run. Allocation counts are far more stable than wall time on a shared
// runner, so this catches a hot loop that silently starts allocating even
// when the ns/op noise would hide it.
//
// With -regen, the tool stops reading stdin and instead regenerates the
// committed baseline itself, encoding the protocol every BENCH_main.json
// refresh has followed: run the full suite three times at 100ms per
// benchmark and keep the per-benchmark, per-metric median (a median of
// three beats one lucky run on a noisy runner; the odd count means the
// median is always a really-measured value):
//
//	go build ./cmd/benchjson && ./benchjson -regen -o BENCH_main.json
//
// Without -o the merged report goes to stdout like the streaming mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The baseline regeneration protocol: three full suite runs at 100ms per
// benchmark, merged per benchmark and per metric by median.
const (
	regenRuns      = 3
	regenBenchtime = "100ms"
)

// event is the subset of the test2json stream the tool consumes.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// Result is one benchmark measurement.
type Result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the artifact schema.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches the start of a benchmark result line; the tail is
// parsed as alternating value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// gomaxprocsSuffix strips the "-8" style procs suffix testing appends to
// benchmark names, so the artifact is comparable across runner shapes.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	baseline := flag.String("baseline", "", "committed report to diff against (per-benchmark ns/op deltas on stderr)")
	warn := flag.Float64("warn", 0, "flag ns/op regressions above this percentage vs the baseline (0 = off; never fails the run)")
	failPct := flag.Float64("fail", 0, "exit nonzero when an allowlisted benchmark (see -faillist) regresses ns/op above this percentage vs the baseline (0 = off)")
	failAllocPct := flag.Float64("failallocs", 0, "exit nonzero when an allowlisted benchmark regresses allocs/op above this percentage vs the baseline (any growth from a zero-alloc baseline gates; 0 = off)")
	faillist := flag.String("faillist", "GlauberStep,CondWeights,CondLookup,BatchSweep,BatchLuby,BatchMetropolis,DriverConverge",
		"comma-separated benchmark-name substrings gated by -fail and -failallocs; others stay warn-only")
	regen := flag.Bool("regen", false, "regenerate the baseline: run the suite "+strconv.Itoa(regenRuns)+"× at -benchtime="+regenBenchtime+" and write the per-metric median report (ignores stdin)")
	outPath := flag.String("o", "", "with -regen: write the merged report to this file instead of stdout")
	flag.Parse()
	if *regen {
		if err := regenerate(*outPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		return
	}
	report, failed, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	var gated []string
	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			// A missing or unreadable baseline must not fail the run: the
			// delta is informational and the baseline only exists from the
			// PR that introduced it onward.
			fmt.Fprintln(os.Stderr, "benchjson: no baseline diff:", err)
		} else {
			gated = printDelta(os.Stderr, base, report, *warn, *failPct, *failAllocPct, splitList(*faillist))
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: one or more packages failed")
		os.Exit(1)
	}
	if len(gated) > 0 {
		os.Exit(1)
	}
}

// regenerate runs the baseline protocol: regenRuns full suite runs at
// regenBenchtime each, merged by medianReport and written to path (stdout
// when path is empty). Each run's result lines are echoed to stderr so the
// regeneration stays observable; a failing package aborts the whole
// regeneration — a baseline must never be built from a partial run.
func regenerate(path string) error {
	reports := make([]*Report, 0, regenRuns)
	for i := 1; i <= regenRuns; i++ {
		fmt.Fprintf(os.Stderr, "benchjson: regen run %d/%d (go test -bench=. -benchtime=%s)\n", i, regenRuns, regenBenchtime)
		cmd := exec.Command("go", "test", "-json", "-run=NONE", "-bench=.",
			"-benchtime="+regenBenchtime, "-benchmem", "./...")
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		report, failed, perr := parse(stdout, os.Stderr)
		werr := cmd.Wait()
		if perr != nil {
			return perr
		}
		if failed || werr != nil {
			return fmt.Errorf("regen run %d/%d failed (go test: %v)", i, regenRuns, werr)
		}
		reports = append(reports, report)
	}
	merged := medianReport(reports)
	out := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(merged)
}

// medianReport merges the runs per benchmark: each metric becomes the
// median of the values the runs reported for it, and the iteration count
// likewise. A benchmark missing from some runs keeps the median of the
// runs that did report it, so a flaky sub-benchmark cannot silently drop
// a metric from the baseline.
func medianReport(runs []*Report) *Report {
	type acc struct {
		iters   []int64
		metrics map[string][]float64
	}
	key := func(r Result) string { return r.Package + " " + r.Name }
	byKey := make(map[string]*acc)
	protos := make(map[string]Result)
	var order []string
	for _, run := range runs {
		for _, r := range run.Benchmarks {
			k := key(r)
			a, ok := byKey[k]
			if !ok {
				a = &acc{metrics: make(map[string][]float64)}
				byKey[k] = a
				protos[k] = r
				order = append(order, k)
			}
			a.iters = append(a.iters, r.Iterations)
			for unit, v := range r.Metrics {
				a.metrics[unit] = append(a.metrics[unit], v)
			}
		}
	}
	sort.Strings(order)
	merged := &Report{Benchmarks: make([]Result, 0, len(order))}
	for _, k := range order {
		a, p := byKey[k], protos[k]
		res := Result{
			Package:    p.Package,
			Name:       p.Name,
			Iterations: medianInt64(a.iters),
			Metrics:    make(map[string]float64, len(a.metrics)),
		}
		for unit, vs := range a.metrics {
			res.Metrics[unit] = medianFloat64(vs)
		}
		merged.Benchmarks = append(merged.Benchmarks, res)
	}
	return merged
}

func medianFloat64(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 0 {
		return (s[mid-1] + s[mid]) / 2
	}
	return s[mid]
}

func medianInt64(vs []int64) int64 {
	s := append([]int64(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	if len(s)%2 == 0 {
		return (s[mid-1] + s[mid]) / 2
	}
	return s[mid]
}

// splitList parses a comma-separated allowlist, dropping empty entries so
// a trailing comma or an empty -faillist disables the gate cleanly.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// readReport loads a previously written artifact.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// printDelta writes the per-benchmark ns/op comparison of cur against
// base: one line per benchmark present in both, plus the names only one
// report has. Benchmarks are keyed by package + name (including sub-
// benchmark paths). With warnPct > 0, deltas above that percentage get a
// REGRESSION marker and a trailing WARNING summary (informational only —
// the exit code is unchanged). With failPct > 0, benchmarks whose name
// contains any of the allow substrings are instead gated at that
// threshold: they get a FAIL marker, a trailing FAIL summary, and are
// returned so the caller can turn them into a nonzero exit. With
// failAllocPct > 0 the allowlisted benchmarks are also gated on
// allocs/op (any growth from a zero-alloc baseline gates).
func printDelta(w io.Writer, base, cur *Report, warnPct, failPct, failAllocPct float64, allow []string) []string {
	key := func(r Result) string { return r.Package + " " + r.Name }
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[key(r)] = r
	}
	allowed := func(name string) bool {
		for _, sub := range allow {
			if strings.Contains(name, sub) {
				return true
			}
		}
		return false
	}
	fmt.Fprintln(w, "benchjson: ns/op vs baseline (smoke run)")
	seen := make(map[string]bool, len(cur.Benchmarks))
	var regressed, gated, gatedAllocs []string
	for _, r := range cur.Benchmarks {
		k := key(r)
		seen[k] = true
		b, ok := baseBy[k]
		if !ok {
			fmt.Fprintf(w, "  new      %-60s %12.0f ns/op\n", r.Name, r.Metrics["ns/op"])
			continue
		}
		old, oldOK := b.Metrics["ns/op"]
		now, nowOK := r.Metrics["ns/op"]
		if !oldOK || !nowOK || old == 0 {
			continue
		}
		pct := 100 * (now - old) / old
		mark := ""
		switch {
		case failPct > 0 && pct > failPct && allowed(r.Name):
			mark = "  FAIL"
			gated = append(gated, r.Name)
		case warnPct > 0 && pct > warnPct:
			mark = "  REGRESSION"
			regressed = append(regressed, r.Name)
		}
		if failAllocPct > 0 && allowed(r.Name) {
			oldA, okA := b.Metrics["allocs/op"]
			nowA, okN := r.Metrics["allocs/op"]
			if okA && okN {
				bad := oldA == 0 && nowA > 0
				if oldA > 0 && 100*(nowA-oldA)/oldA > failAllocPct {
					bad = true
				}
				if bad {
					mark += fmt.Sprintf("  FAIL %.0f -> %.0f allocs/op", oldA, nowA)
					gatedAllocs = append(gatedAllocs, r.Name)
				}
			}
		}
		fmt.Fprintf(w, "  %+7.1f%% %-60s %12.0f -> %.0f ns/op%s\n", pct, r.Name, old, now, mark)
	}
	for _, b := range base.Benchmarks {
		if !seen[key(b)] {
			fmt.Fprintf(w, "  missing  %-60s (was %.0f ns/op)\n", b.Name, b.Metrics["ns/op"])
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(w, "benchjson: WARNING: %d benchmark(s) regressed > %.0f%% ns/op vs baseline: %s\n",
			len(regressed), warnPct, strings.Join(regressed, ", "))
	}
	if len(gated) > 0 {
		fmt.Fprintf(w, "benchjson: FAIL: %d allowlisted benchmark(s) regressed > %.0f%% ns/op vs baseline: %s\n",
			len(gated), failPct, strings.Join(gated, ", "))
	}
	if len(gatedAllocs) > 0 {
		fmt.Fprintf(w, "benchjson: FAIL: %d allowlisted benchmark(s) regressed > %.0f%% allocs/op vs baseline: %s\n",
			len(gatedAllocs), failAllocPct, strings.Join(gatedAllocs, ", "))
	}
	return append(gated, gatedAllocs...)
}

// parse consumes the event stream, echoing benchmark-relevant output lines
// to echo, and reports whether any package failed.
//
// Output events are reassembled into lines per package before matching:
// `go test` prints a benchmark's name first and appends the numbers only
// when it finishes, so for any benchmark that is slow enough test2json
// flushes the two halves as separate Output events — treating each event
// as a complete line silently drops every slow benchmark from the report.
func parse(r io.Reader, echo io.Writer) (*Report, bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	report := &Report{Benchmarks: []Result{}}
	failed := false
	carry := make(map[string]string)
	handleLine := func(pkg, line string) {
		res, ok := parseBenchLine(pkg, strings.TrimSpace(line))
		if !ok {
			return
		}
		fmt.Fprintf(echo, "%s\t%s\n", pkg, line)
		report.Benchmarks = append(report.Benchmarks, res)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate stray non-JSON lines (e.g. toolchain notes).
			continue
		}
		switch ev.Action {
		case "fail":
			failed = true
		case "output":
			text := carry[ev.Package] + ev.Output
			for {
				i := strings.IndexByte(text, '\n')
				if i < 0 {
					break
				}
				handleLine(ev.Package, text[:i])
				text = text[i+1:]
			}
			carry[ev.Package] = text
		}
	}
	for pkg, rest := range carry {
		if rest != "" {
			handleLine(pkg, rest)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, failed, err
	}
	sort.Slice(report.Benchmarks, func(i, j int) bool {
		a, b := report.Benchmarks[i], report.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	return report, failed, nil
}

// parseBenchLine decodes one "BenchmarkX-8  20  123 ns/op  4 B/op ..."
// result line.
func parseBenchLine(pkg, line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Result{}, false
	}
	fields := strings.Fields(m[3])
	if len(fields) == 0 || len(fields)%2 != 0 {
		return Result{}, false
	}
	metrics := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		metrics[fields[i+1]] = v
	}
	return Result{
		Package:    pkg,
		Name:       gomaxprocsSuffix.ReplaceAllString(m[1], ""),
		Iterations: iters,
		Metrics:    metrics,
	}, true
}
