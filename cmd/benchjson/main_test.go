package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleStream = `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkGlauberStep-8   \t 1000000\t       96.51 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkSamplerSweep/lubyglauber-sharded-8 \t 100\t 179584 ns/op\t 117.6 updates/round\t 5600 B/op\t 8 allocs/op\n"}
not-json noise line
{"Action":"output","Package":"repro/internal/dist","Output":"BenchmarkTV \t 5\t 1234 ns/op\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
{"Action":"pass","Package":"repro"}
`

func TestParseBenchStream(t *testing.T) {
	var echo bytes.Buffer
	report, failed, err := parse(strings.NewReader(sampleStream), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("stream marked failed")
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3: %+v", len(report.Benchmarks), report.Benchmarks)
	}
	// Sorted by package then name: repro/… sorts after repro.
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkGlauberStep" || b0.Iterations != 1000000 {
		t.Errorf("first record = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 96.51 || b0.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", b0.Metrics)
	}
	b1 := report.Benchmarks[1]
	if b1.Name != "BenchmarkSamplerSweep/lubyglauber-sharded" {
		t.Errorf("subbenchmark name = %q (procs suffix must be stripped)", b1.Name)
	}
	if b1.Metrics["updates/round"] != 117.6 || b1.Metrics["B/op"] != 5600 {
		t.Errorf("custom metrics = %v", b1.Metrics)
	}
	if report.Benchmarks[2].Package != "repro/internal/dist" {
		t.Errorf("order = %+v", report.Benchmarks)
	}
	if !strings.Contains(echo.String(), "BenchmarkGlauberStep") {
		t.Error("benchmark lines not echoed for the CI log")
	}
	if strings.Contains(echo.String(), "goos") {
		t.Error("non-benchmark output echoed")
	}
}

func TestParseReportsFailure(t *testing.T) {
	stream := `{"Action":"output","Package":"p","Output":"BenchmarkX-4 \t 2\t 10 ns/op\n"}
{"Action":"fail","Package":"p"}
`
	var echo bytes.Buffer
	report, failed, err := parse(strings.NewReader(stream), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("failure not propagated")
	}
	if len(report.Benchmarks) != 1 {
		t.Errorf("benchmarks = %+v", report.Benchmarks)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"Benchmark",                 // no iterations or metrics
		"BenchmarkX 12",             // no metrics
		"BenchmarkX 12 3 ns/op 4",   // dangling value without a unit
		"BenchmarkX twelve 3 ns/op", // non-numeric iterations
	} {
		if _, ok := parseBenchLine("p", line); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}
