package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleStream = `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkGlauberStep-8   \t 1000000\t       96.51 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkSamplerSweep/lubyglauber-sharded-8 \t 100\t 179584 ns/op\t 117.6 updates/round\t 5600 B/op\t 8 allocs/op\n"}
not-json noise line
{"Action":"output","Package":"repro/internal/dist","Output":"BenchmarkTV \t 5\t 1234 ns/op\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
{"Action":"pass","Package":"repro"}
`

func TestParseBenchStream(t *testing.T) {
	var echo bytes.Buffer
	report, failed, err := parse(strings.NewReader(sampleStream), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("stream marked failed")
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3: %+v", len(report.Benchmarks), report.Benchmarks)
	}
	// Sorted by package then name: repro/… sorts after repro.
	b0 := report.Benchmarks[0]
	if b0.Name != "BenchmarkGlauberStep" || b0.Iterations != 1000000 {
		t.Errorf("first record = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 96.51 || b0.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", b0.Metrics)
	}
	b1 := report.Benchmarks[1]
	if b1.Name != "BenchmarkSamplerSweep/lubyglauber-sharded" {
		t.Errorf("subbenchmark name = %q (procs suffix must be stripped)", b1.Name)
	}
	if b1.Metrics["updates/round"] != 117.6 || b1.Metrics["B/op"] != 5600 {
		t.Errorf("custom metrics = %v", b1.Metrics)
	}
	if report.Benchmarks[2].Package != "repro/internal/dist" {
		t.Errorf("order = %+v", report.Benchmarks)
	}
	if !strings.Contains(echo.String(), "BenchmarkGlauberStep") {
		t.Error("benchmark lines not echoed for the CI log")
	}
	if strings.Contains(echo.String(), "goos") {
		t.Error("non-benchmark output echoed")
	}
}

func TestParseReportsFailure(t *testing.T) {
	stream := `{"Action":"output","Package":"p","Output":"BenchmarkX-4 \t 2\t 10 ns/op\n"}
{"Action":"fail","Package":"p"}
`
	var echo bytes.Buffer
	report, failed, err := parse(strings.NewReader(stream), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("failure not propagated")
	}
	if len(report.Benchmarks) != 1 {
		t.Errorf("benchmarks = %+v", report.Benchmarks)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"Benchmark",                 // no iterations or metrics
		"BenchmarkX 12",             // no metrics
		"BenchmarkX 12 3 ns/op 4",   // dangling value without a unit
		"BenchmarkX twelve 3 ns/op", // non-numeric iterations
	} {
		if _, ok := parseBenchLine("p", line); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}

func TestPrintDelta(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100}},
		{Package: "p", Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 7}},
		{Package: "q", Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 50}},
	}}
	cur := &Report{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 150}},
		{Package: "p", Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 5}},
		{Package: "q", Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 25}},
	}}
	var out bytes.Buffer
	printDelta(&out, base, cur, 0, 0, 0, nil)
	s := out.String()
	for _, want := range []string{"+50.0%", "-50.0%", "new", "BenchmarkNew", "missing", "BenchmarkGone"} {
		if !strings.Contains(s, want) {
			t.Errorf("delta output missing %q:\n%s", want, s)
		}
	}
	// Same-package benchmarks with the same name in different packages must
	// not be conflated: q's BenchmarkA halved while p's grew.
	if strings.Count(s, "BenchmarkA") != 2 {
		t.Errorf("expected both package entries for BenchmarkA:\n%s", s)
	}
	// Without -warn no regression machinery fires.
	if strings.Contains(s, "REGRESSION") || strings.Contains(s, "WARNING") {
		t.Errorf("warn output without -warn:\n%s", s)
	}
}

func TestPrintDeltaWarn(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkSlow", Metrics: map[string]float64{"ns/op": 100}},
		{Package: "p", Name: "BenchmarkEdge", Metrics: map[string]float64{"ns/op": 100}},
		{Package: "p", Name: "BenchmarkFine", Metrics: map[string]float64{"ns/op": 100}},
	}}
	cur := &Report{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkSlow", Metrics: map[string]float64{"ns/op": 140}},
		{Package: "p", Name: "BenchmarkEdge", Metrics: map[string]float64{"ns/op": 125}}, // exactly the threshold: not flagged
		{Package: "p", Name: "BenchmarkFine", Metrics: map[string]float64{"ns/op": 90}},
	}}
	var out bytes.Buffer
	gated := printDelta(&out, base, cur, 25, 0, 0, nil)
	s := out.String()
	if strings.Count(s, "REGRESSION") != 1 || !strings.Contains(s, "BenchmarkSlow") {
		t.Errorf("expected exactly BenchmarkSlow flagged:\n%s", s)
	}
	if !strings.Contains(s, "WARNING: 1 benchmark(s) regressed > 25%") {
		t.Errorf("missing warn summary:\n%s", s)
	}
	if len(gated) != 0 {
		t.Errorf("warn-only run gated %v", gated)
	}
}

// TestPrintDeltaFail pins the failing gate: only allowlisted benchmarks
// (name-substring match) beyond the -fail threshold are returned, marked
// FAIL, and summarized; allowlisted deltas at or under the threshold and
// non-allowlisted regressions of any size stay warn-only.
func TestPrintDeltaFail(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkBatchSweep/B=32", Metrics: map[string]float64{"ns/op": 100}},
		{Package: "p", Name: "BenchmarkBatchSweep/B=8", Metrics: map[string]float64{"ns/op": 100}},
		{Package: "p", Name: "BenchmarkGlauberStep", Metrics: map[string]float64{"ns/op": 100}},
		{Package: "p", Name: "BenchmarkNoisy", Metrics: map[string]float64{"ns/op": 100}},
	}}
	cur := &Report{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkBatchSweep/B=32", Metrics: map[string]float64{"ns/op": 180}},
		{Package: "p", Name: "BenchmarkBatchSweep/B=8", Metrics: map[string]float64{"ns/op": 150}}, // exactly the threshold: not gated
		{Package: "p", Name: "BenchmarkGlauberStep", Metrics: map[string]float64{"ns/op": 130}},    // allowlisted, above warn, below fail
		{Package: "p", Name: "BenchmarkNoisy", Metrics: map[string]float64{"ns/op": 900}},          // not allowlisted: warn only
	}}
	var out bytes.Buffer
	gated := printDelta(&out, base, cur, 25, 50, 0, []string{"GlauberStep", "BatchSweep"})
	s := out.String()
	if len(gated) != 1 || gated[0] != "BenchmarkBatchSweep/B=32" {
		t.Errorf("gated = %v, want exactly BenchmarkBatchSweep/B=32:\n%s", gated, s)
	}
	if strings.Count(s, "  FAIL") != 1 {
		t.Errorf("expected exactly one FAIL marker:\n%s", s)
	}
	if !strings.Contains(s, "FAIL: 1 allowlisted benchmark(s) regressed > 50%") {
		t.Errorf("missing fail summary:\n%s", s)
	}
	// The sub-threshold allowlisted benchmarks and the noisy outsider all
	// fall back to the warn path.
	if strings.Count(s, "REGRESSION") != 3 {
		t.Errorf("expected B=8, GlauberStep and Noisy as warn-only REGRESSIONs:\n%s", s)
	}
	// With no allowlist the gate is inert even when -fail is set.
	out.Reset()
	if g := printDelta(&out, base, cur, 0, 50, 0, nil); len(g) != 0 {
		t.Errorf("empty allowlist gated %v", g)
	}
}

// TestPrintDeltaFailAllocs pins the allocs/op gate: allowlisted
// benchmarks whose allocation count grows beyond the threshold — or at
// all from a zero-alloc baseline — are gated, independently of their
// ns/op delta; non-allowlisted alloc growth and within-threshold growth
// pass.
func TestPrintDeltaFailAllocs(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkGlauberStep", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 0}},
		{Package: "p", Name: "BenchmarkBatchLubySweep/B=32", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 8}},
		{Package: "p", Name: "BenchmarkBatchSweep/B=8", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 8}},
		{Package: "p", Name: "BenchmarkNoisy", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 1}},
	}}
	cur := &Report{Benchmarks: []Result{
		// Zero-alloc baseline growing at all: gated even though ns/op improved.
		{Package: "p", Name: "BenchmarkGlauberStep", Metrics: map[string]float64{"ns/op": 90, "allocs/op": 2}},
		// Above the 50% alloc threshold: gated.
		{Package: "p", Name: "BenchmarkBatchLubySweep/B=32", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 13}},
		// At the threshold exactly: not gated.
		{Package: "p", Name: "BenchmarkBatchSweep/B=8", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 12}},
		// Not allowlisted: alloc growth ignored.
		{Package: "p", Name: "BenchmarkNoisy", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 100}},
	}}
	var out bytes.Buffer
	gated := printDelta(&out, base, cur, 0, 0, 50, []string{"GlauberStep", "BatchSweep", "BatchLuby"})
	s := out.String()
	if len(gated) != 2 {
		t.Errorf("gated = %v, want the zero-alloc and >50%% growers:\n%s", gated, s)
	}
	for _, want := range []string{"BenchmarkGlauberStep", "BenchmarkBatchLubySweep/B=32"} {
		found := false
		for _, g := range gated {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not gated: %v\n%s", want, gated, s)
		}
	}
	if !strings.Contains(s, "0 -> 2 allocs/op") || !strings.Contains(s, "8 -> 13 allocs/op") {
		t.Errorf("alloc markers missing:\n%s", s)
	}
	if !strings.Contains(s, "FAIL: 2 allowlisted benchmark(s) regressed > 50% allocs/op") {
		t.Errorf("missing allocs fail summary:\n%s", s)
	}
	// With the gate off, nothing fires.
	out.Reset()
	if g := printDelta(&out, base, cur, 0, 0, 0, []string{"GlauberStep"}); len(g) != 0 {
		t.Errorf("disabled allocs gate fired: %v", g)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" GlauberStep, CondWeights ,,BatchSweep, BatchLuby,BatchMetropolis, ")
	want := []string{"GlauberStep", "CondWeights", "BatchSweep", "BatchLuby", "BatchMetropolis"}
	if len(got) != len(want) {
		t.Fatalf("splitList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitList = %v, want %v", got, want)
		}
	}
	if splitList("") != nil {
		t.Error("empty list must disable the gate")
	}
}

func TestReadReportRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/r.json"
	want := &Report{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkA", Iterations: 3, Metrics: map[string]float64{"ns/op": 12}},
	}}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Metrics["ns/op"] != 12 {
		t.Errorf("roundtrip = %+v", got)
	}
	if _, err := readReport(dir + "/missing.json"); err == nil {
		t.Error("missing baseline accepted")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(path); err == nil {
		t.Error("corrupt baseline accepted")
	}
}

// TestParseSplitBenchLine is the regression test for slow benchmarks:
// `go test` prints the name first and the numbers when the benchmark
// finishes, so test2json emits the halves as separate Output events. The
// parser must reassemble them (per package) instead of dropping the
// benchmark.
func TestParseSplitBenchLine(t *testing.T) {
	stream := `{"Action":"output","Package":"p","Output":"BenchmarkSlow-8   \t"}
{"Action":"output","Package":"q","Output":"BenchmarkOther-8 \t 3\t 7 ns/op\n"}
{"Action":"output","Package":"p","Output":" 1\t 123456789 ns/op\t 5.5 tables/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkTail-8 \t 2\t 42 ns/op"}
{"Action":"pass","Package":"p"}
`
	var echo bytes.Buffer
	report, failed, err := parse(strings.NewReader(stream), &echo)
	if err != nil || failed {
		t.Fatal(err, failed)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %+v, want 3", report.Benchmarks)
	}
	by := map[string]Result{}
	for _, r := range report.Benchmarks {
		by[r.Name] = r
	}
	slow, ok := by["BenchmarkSlow"]
	if !ok || slow.Metrics["ns/op"] != 123456789 || slow.Metrics["tables/op"] != 5.5 {
		t.Errorf("split line not reassembled: %+v", slow)
	}
	// A line left without a trailing newline at stream end still counts.
	if tail, ok := by["BenchmarkTail"]; !ok || tail.Metrics["ns/op"] != 42 {
		t.Errorf("unterminated final line dropped: %+v", tail)
	}
	if _, ok := by["BenchmarkOther"]; !ok {
		t.Error("interleaved package line lost")
	}
}

// TestMedianReport pins the -regen merge: per-benchmark per-metric medians
// across runs, benchmarks missing from some runs kept at the median of the
// runs that reported them, output sorted by package and name.
func TestMedianReport(t *testing.T) {
	mk := func(name string, ns float64, iters int64, extra map[string]float64) Result {
		m := map[string]float64{"ns/op": ns}
		for k, v := range extra {
			m[k] = v
		}
		return Result{Package: "repro", Name: name, Iterations: iters, Metrics: m}
	}
	runs := []*Report{
		{Benchmarks: []Result{
			mk("BenchmarkB", 300, 10, nil),
			mk("BenchmarkA", 100, 50, map[string]float64{"cond-bytes": 1024}),
		}},
		{Benchmarks: []Result{
			mk("BenchmarkA", 120, 40, map[string]float64{"cond-bytes": 1024}),
		}},
		{Benchmarks: []Result{
			mk("BenchmarkA", 90, 70, map[string]float64{"cond-bytes": 1024}),
			mk("BenchmarkB", 500, 20, nil),
		}},
	}
	got := medianReport(runs)
	if len(got.Benchmarks) != 2 {
		t.Fatalf("merged %d benchmarks, want 2", len(got.Benchmarks))
	}
	a, b := got.Benchmarks[0], got.Benchmarks[1]
	if a.Name != "BenchmarkA" || b.Name != "BenchmarkB" {
		t.Fatalf("order %q, %q", a.Name, b.Name)
	}
	if a.Metrics["ns/op"] != 100 || a.Iterations != 50 {
		t.Errorf("A median = %v ns/op, %d iters; want 100, 50", a.Metrics["ns/op"], a.Iterations)
	}
	if a.Metrics["cond-bytes"] != 1024 {
		t.Errorf("A cond-bytes = %v, want 1024", a.Metrics["cond-bytes"])
	}
	// B appears in two runs: even count → midpoint.
	if b.Metrics["ns/op"] != 400 || b.Iterations != 15 {
		t.Errorf("B median = %v ns/op, %d iters; want 400, 15", b.Metrics["ns/op"], b.Iterations)
	}
}
