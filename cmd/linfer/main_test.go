package main

import "testing"

func TestRunHardcoreWithPins(t *testing.T) {
	if err := run([]string{"-model", "hardcore", "-graph", "cycle", "-n", "10", "-lambda", "1", "-pin", "0=1,5=0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIsing(t *testing.T) {
	if err := run([]string{"-model", "ising", "-graph", "path", "-n", "8", "-beta", "0.7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLargeSkipsCheck(t *testing.T) {
	// n > 24 disables the brute-force comparison but must still run.
	if err := run([]string{"-model", "hardcore", "-graph", "cycle", "-n", "30", "-lambda", "0.8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	bad := [][]string{
		{"-model", "nosuch"},
		{"-graph", "nosuch"},
		{"-pin", "garbage"},
		{"-pin", "99=1"},
		{"-model", "hardcore", "-graph", "grid", "-n", "3", "-lambda", "100"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
