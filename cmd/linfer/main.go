// Command linfer runs LOCAL approximate inference (the counting side of the
// paper) at every vertex of a model instance: each node estimates its own
// conditional marginal distribution within the requested accuracy, and on
// small instances the output is checked against brute-force ground truth.
//
// Usage:
//
//	linfer -model hardcore -graph cycle -n 16 -lambda 1.0 -delta 0.01
//	linfer -model hardcore -graph cycle -n 16 -pin 0=1,8=0
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/gibbs"
	"repro/internal/graph"
	"repro/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "linfer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("linfer", flag.ContinueOnError)
	modelName := fs.String("model", "hardcore", "model: hardcore | ising")
	graphName := fs.String("graph", "cycle", "graph: "+strings.Join(graph.GeneratorNames(), " | "))
	n := fs.Int("n", 16, "graph size parameter (vertices, or side for grid/torus)")
	lambda := fs.Float64("lambda", 1.0, "fugacity")
	beta := fs.Float64("beta", 0.6, "Ising edge activity")
	delta := fs.Float64("delta", 0.01, "total variation accuracy")
	pinFlag := fs.String("pin", "", "comma-separated pins v=x (self-reducibility)")
	checkExact := fs.Bool("check", true, "compare against brute force when feasible")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := graph.Build(*graphName, *n)
	if err != nil {
		return err
	}
	pinned := dist.NewConfig(g.N())
	if *pinFlag != "" {
		for _, kv := range strings.Split(*pinFlag, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad pin %q", kv)
			}
			v, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil {
				return err
			}
			x, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return err
			}
			if v < 0 || v >= g.N() {
				return fmt.Errorf("pin vertex %d out of range", v)
			}
			pinned[v] = x
		}
	}

	var (
		in *gibbs.Instance
		o  core.Oracle
	)
	switch strings.ToLower(*modelName) {
	case "hardcore":
		spec, err2 := model.Hardcore(g, *lambda)
		if err2 != nil {
			return err2
		}
		in, err = gibbs.NewInstance(spec, pinned)
		if err != nil {
			return err
		}
		est, err2 := decay.NewHardcoreSAW(g, *lambda)
		if err2 != nil {
			return err2
		}
		rate := model.HardcoreDecayRate(*lambda, g.MaxDegree())
		if rate >= 1 {
			return fmt.Errorf("λ=%g outside uniqueness for Δ=%d: approximate inference is not locally computable (Theorem 5.1 + Ω(diam) bound)", *lambda, g.MaxDegree())
		}
		o = &core.DecayOracle{Est: est, Rate: rate, N: g.N()}
	case "ising":
		p := model.TwoSpinParams{Beta: *beta, Gamma: *beta, Lambda: *lambda}
		spec, err2 := model.TwoSpin(g, p)
		if err2 != nil {
			return err2
		}
		in, err = gibbs.NewInstance(spec, pinned)
		if err != nil {
			return err
		}
		est, err2 := decay.NewTwoSpinSAW(g, p)
		if err2 != nil {
			return err2
		}
		o = &core.DecayOracle{Est: est, Rate: 0.9, N: g.N()}
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}

	_ = rand.New(rand.NewSource(1)) // inference is deterministic (Prop. 3.3)
	fmt.Printf("model=%s n=%d Δ=%d δ=%g pinned=%d\n", *modelName, g.N(), g.MaxDegree(), *delta, len(in.Lambda()))
	worst := 0.0
	canCheck := *checkExact && g.N() <= 24
	for v := 0; v < g.N(); v++ {
		m, radius, err := o.Marginal(in, v, *delta)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("v=%-3d radius=%-3d µ̂=%v", v, radius, m)
		if canCheck {
			want, err := exact.Marginal(in, v)
			if err != nil {
				return err
			}
			tv, err := dist.TV(m, want)
			if err != nil {
				return err
			}
			if tv > worst {
				worst = tv
			}
			line += fmt.Sprintf("  |err|=%.2g", tv)
		}
		fmt.Println(line)
	}
	if canCheck {
		status := "within bound"
		if worst > *delta {
			status = "EXCEEDS bound"
		}
		fmt.Printf("worst error %.3g vs δ=%g: %s\n", worst, *delta, status)
	}
	return nil
}
