// Ablation benchmarks for the design choices called out in DESIGN.md:
// bridge-completion strategy and ratio restriction inside the JVV sampler,
// network-decomposition parameter tradeoffs, SAW truncation depth, and the
// exact JVV sampler against the classical Glauber-dynamics baseline.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/dist"
	"repro/internal/gibbs"
	"repro/internal/glauber"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/netdecomp"
)

func benchHardcoreSetup(b *testing.B, n int, lambda float64) (*gibbs.Instance, *core.DecayOracle) {
	b.Helper()
	g := graph.Cycle(n)
	spec, err := model.Hardcore(g, lambda)
	if err != nil {
		b.Fatal(err)
	}
	in, err := gibbs.NewInstance(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	est, err := decay.NewHardcoreSAW(g, lambda)
	if err != nil {
		b.Fatal(err)
	}
	return in, &core.DecayOracle{Est: est, Rate: model.HardcoreDecayRate(lambda, 2), N: n}
}

// BenchmarkAblationJVVCompletion compares the two pass-3 bridge
// constructions: greedy completion (needs local admissibility, linear) vs
// exhaustive ball enumeration (fully general, exponential in the ball).
func BenchmarkAblationJVVCompletion(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    core.CompletionMode
	}{
		{"greedy", core.CompleteGreedy},
		{"enumerate", core.CompleteEnumerate},
	} {
		b.Run(mode.name, func(b *testing.B) {
			in, o := benchHardcoreSetup(b, 16, 1.0)
			rng := rand.New(rand.NewSource(1))
			cfg := core.JVVConfig{BallCompletion: mode.m}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.LocalJVV(in, o, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJVVRatio compares the B_{2t}-restricted acceptance
// ratio of equation (11) against the full-product variant: the restriction
// is what makes pass 3 local, and the bench quantifies the cost it saves.
func BenchmarkAblationJVVRatio(b *testing.B) {
	for _, full := range []bool{false, true} {
		name := "restricted"
		if full {
			name = "full"
		}
		b.Run(name, func(b *testing.B) {
			in, o := benchHardcoreSetup(b, 32, 1.0)
			rng := rand.New(rand.NewSource(2))
			cfg := core.JVVConfig{FullRatio: full}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.LocalJVV(in, o, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSamplerVsGlauber compares one exact JVV sample against
// Glauber dynamics run for enough sweeps to be comparably accurate on this
// instance — the classical-baseline comparison.
func BenchmarkAblationSamplerVsGlauber(b *testing.B) {
	b.Run("jvv-exact", func(b *testing.B) {
		in, o := benchHardcoreSetup(b, 24, 1.0)
		rng := rand.New(rand.NewSource(3))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.LocalJVV(in, o, core.JVVConfig{}, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("glauber-30sweeps", func(b *testing.B) {
		in, _ := benchHardcoreSetup(b, 24, 1.0)
		rng := rand.New(rand.NewSource(4))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := glauber.Sample(in, 30, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNetdecompRadius sweeps the ball-carving radius budget:
// larger radii produce fewer colors (fewer scheduling phases) but larger
// cluster diameters (longer phases) — the C·D tradeoff behind Lemma 3.1.
func BenchmarkAblationNetdecompRadius(b *testing.B) {
	g := graph.Torus(12, 12)
	for _, radius := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("radius=%d", radius), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			var colors, diam int
			for i := 0; i < b.N; i++ {
				d, err := netdecomp.BallCarving(g, netdecomp.Params{RadiusBudget: radius}, rng)
				if err != nil {
					b.Fatal(err)
				}
				colors, diam = d.Colors, d.Diameter
			}
			b.ReportMetric(float64(colors), "colors")
			b.ReportMetric(float64(diam), "diameter")
			b.ReportMetric(float64(colors*(diam+1)), "schedule-cost")
		})
	}
}

// BenchmarkAblationSAWDepth sweeps the SAW truncation depth on a 3-regular
// graph, reporting the accuracy bought per unit of exponential cost.
func BenchmarkAblationSAWDepth(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, err := graph.RandomRegular(64, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	lambda := 1.0 // < λc(3) = 4
	est, err := decay.NewHardcoreSAW(g, lambda)
	if err != nil {
		b.Fatal(err)
	}
	pin := dist.NewConfig(g.N())
	ref, err := est.Marginal(pin, 0, 24)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var got dist.Dist
			for i := 0; i < b.N; i++ {
				var err error
				got, err = est.Marginal(pin, 0, depth)
				if err != nil {
					b.Fatal(err)
				}
			}
			tv, err := dist.TV(got, ref)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(tv, "TVerr")
		})
	}
}

// BenchmarkAblationBoostVsDirect compares the boosting route to
// multiplicative error (shell pinning + ball enumeration) against the
// direct multiplicative guarantee of the SAW oracle — the choice Theorem
// 4.2 leaves open when the model's SSM is already known in multiplicative
// form (Corollary 5.2).
func BenchmarkAblationBoostVsDirect(b *testing.B) {
	in, o := benchHardcoreSetup(b, 12, 1.0)
	b.Run("boost", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Boost(in, o, 0, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-saw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := o.MarginalMult(in, 0, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
